// Package simmpi is a trace-driven LogGP performance simulator, the stand-in
// for SIM-MPI in the paper's Section V / Figure 14 pipeline: decompressed
// CYPRESS traces (communication sequence + per-record sequential computation
// time) plus network parameters yield a predicted execution time.
//
// The simulator is a sequential discrete-event engine: each rank advances a
// local clock through its event sequence; point-to-point completions couple
// to the matching sender's injection time plus latency, and collectives
// synchronize all ranks with the binomial-tree cost model shared with the
// mpisim runtime.
package simmpi

import (
	"fmt"
	"math"

	"repro/internal/mpisim"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Result is the simulation outcome.
type Result struct {
	// TotalNS is the predicted job execution time (max over ranks).
	TotalNS float64
	// PerRankNS is each rank's final clock.
	PerRankNS []float64
	// CommNS is each rank's accumulated communication time.
	CommNS []float64
	// ComputeNS is each rank's accumulated computation time.
	ComputeNS []float64
}

// CommFraction returns the job-wide communication time share.
func (r Result) CommFraction() float64 {
	var comm, tot float64
	for i := range r.PerRankNS {
		comm += r.CommNS[i]
		tot += r.PerRankNS[i]
	}
	if tot == 0 {
		return 0
	}
	return comm / tot
}

type msgKey struct {
	src, dst, tag int
}

// msgQueue is a FIFO of in-flight message arrival times. Pointer-valued map
// entries keep the hot send/recv path at one map lookup per operation: push
// and pop mutate the queue in place, where the historical value-slice map
// paid a second hash for the re-assign on every push and every pop.
type msgQueue struct {
	buf  []float64
	head int
}

func (q *msgQueue) push(t float64) { q.buf = append(q.buf, t) }

func (q *msgQueue) len() int { return len(q.buf) - q.head }

func (q *msgQueue) pop() float64 {
	t := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return t
}

// queueMap lazily creates per-key queues.
type queueMap map[msgKey]*msgQueue

func (m queueMap) at(k msgKey) *msgQueue {
	q := m[k]
	if q == nil {
		q = &msgQueue{}
		m[k] = q
	}
	return q
}

type pendingRecv struct {
	gid  int32
	peer int
	tag  int
	size int
}

type simRank struct {
	src     EventSource
	cur     trace.Event
	have    bool // cur holds a blocked, unprocessed event
	started bool // src yielded at least one event
	done    bool // src exhausted after at least one event
	idx     int  // events processed (for diagnostics)
	clock   float64
	comm    float64
	compute float64
	pending []pendingRecv
	collIdx int
	inColl  bool
}

type collGroup struct {
	op      trace.Op
	size    int
	arrived int
	maxT    float64
	done    bool
	finish  float64
}

// EventSource is a pull iterator over one rank's replayed event sequence, the
// streaming alternative to materializing a full []trace.Event per rank. The
// pointer returned by Next is only read before the following Next call, so
// implementations may reuse one event buffer (replay.Cursor does).
type EventSource interface {
	// Next returns the next event, or false when the sequence is exhausted.
	Next() (*trace.Event, bool)
}

// sliceSource adapts a materialized sequence to EventSource.
type sliceSource struct {
	evs []trace.Event
	i   int
}

func (s *sliceSource) Next() (*trace.Event, bool) {
	if s.i >= len(s.evs) {
		return nil, false
	}
	e := &s.evs[s.i]
	s.i++
	return e, true
}

// Simulate predicts execution for the given per-rank event sequences. It is
// SimulateStream over materialized slices; both entry points share one
// engine, so their results are identical for identical sequences.
func Simulate(seqs [][]trace.Event, params mpisim.Params) (Result, error) {
	srcs := make([]EventSource, len(seqs))
	for i := range seqs {
		srcs[i] = &sliceSource{evs: seqs[i]}
	}
	return SimulateStream(srcs, params)
}

// SimulateStream predicts execution for per-rank event streams pulled from
// iterators. Peak memory is O(ranks) cursor state plus the engine's in-flight
// message queues instead of O(total events): each rank's events are consumed
// as they are pulled, one at a time. The event an iterator yields is held by
// value across blocked retries, so sources may reuse their buffers.
func SimulateStream(srcs []EventSource, params mpisim.Params) (Result, error) {
	sp := sink.Start(obs.StageSimulate)
	defer sp.End()
	n := len(srcs)
	if n == 0 {
		return Result{}, fmt.Errorf("simmpi: no ranks")
	}
	ranks := make([]simRank, n)
	for i := range ranks {
		ranks[i].src = srcs[i]
	}
	queues := queueMap{}
	var colls []*collGroup

	coll := func(idx int) *collGroup {
		for len(colls) <= idx {
			colls = append(colls, &collGroup{})
		}
		return colls[idx]
	}

	remaining := n
	for remaining > 0 {
		progressed := false
		for rid := range ranks {
			r := &ranks[rid]
			for {
				// Events are processed straight off the source's pointer and
				// copied into r.cur only when they block: the common case
				// (event processes first try) never pays the struct copy.
				var e *trace.Event
				if r.have {
					e = &r.cur
				} else {
					if r.done {
						break
					}
					ev, more := r.src.Next()
					if !more {
						if r.started {
							r.done = true
							remaining--
						}
						// else: source empty from the start — mirror the
						// historical engine, which never marked zero-event
						// ranks done and reported a stall instead.
						break
					}
					r.started = true
					e = ev
				}
				ok, err := step(r, rid, e, n, params, queues, coll)
				if err != nil {
					return Result{}, err
				}
				if !ok {
					if !r.have {
						r.cur = *e
						r.have = true
						sink.Inc(obs.SimBlockedCopies)
					}
					break
				}
				progressed = true
				r.have = false
				r.idx++
			}
		}
		if !progressed && remaining > 0 {
			return Result{}, fmt.Errorf("simmpi: simulation stalled (mismatched trace?): %s", stallState(ranks))
		}
	}
	res := Result{PerRankNS: make([]float64, n), CommNS: make([]float64, n), ComputeNS: make([]float64, n)}
	var processed int64
	for i := range ranks {
		res.PerRankNS[i] = ranks[i].clock
		res.CommNS[i] = ranks[i].comm
		res.ComputeNS[i] = ranks[i].compute
		res.TotalNS = math.Max(res.TotalNS, ranks[i].clock)
		processed += int64(ranks[i].idx)
	}
	sink.Add(obs.SimEventsProcessed, processed)
	return res, nil
}

func stallState(ranks []simRank) string {
	for i := range ranks {
		if ranks[i].have {
			return fmt.Sprintf("rank %d stuck at event %d (%v)", i, ranks[i].idx, ranks[i].cur.Op)
		}
	}
	return "all done"
}

// step attempts to process one event; it returns false when the event must
// wait for progress elsewhere.
func step(r *simRank, rid int, e *trace.Event, n int, p mpisim.Params,
	queues queueMap, coll func(int) *collGroup) (bool, error) {
	// Compute time precedes the call.
	advCompute := func() {
		r.clock += e.ComputeNS
		r.compute += e.ComputeNS
	}
	start := func() float64 { return r.clock }

	switch {
	case e.Op == trace.OpInit:
		advCompute()
		return true, nil
	case e.Op == trace.OpSend || e.Op == trace.OpIsend:
		advCompute()
		t0 := start()
		inject := p.OverheadNS + p.GapPerByteNS*float64(e.Size)
		r.clock += inject
		key := msgKey{rid, e.Peer, e.Tag}
		q := queues.at(key)
		q.push(r.clock + p.LatencyNS)
		if sink.Enabled() {
			sink.Observe(obs.HistSimQueueDepth, int64(q.len()))
		}
		if e.Op == trace.OpIsend {
			// Request bookkeeping only; sends complete locally.
		}
		r.comm += r.clock - t0
		return true, nil
	case e.Op == trace.OpIrecv:
		advCompute()
		t0 := start()
		r.clock += p.OverheadNS / 2
		r.pending = append(r.pending, pendingRecv{gid: e.GID, peer: e.Peer, tag: e.Tag, size: e.Size})
		r.comm += r.clock - t0
		return true, nil
	case e.Op == trace.OpRecv:
		key := msgKey{e.Peer, rid, e.Tag}
		q := queues[key]
		if q == nil || q.len() == 0 {
			return false, nil // matching send not simulated yet
		}
		advCompute()
		t0 := start()
		avail := q.pop()
		r.clock = math.Max(r.clock+p.OverheadNS, avail)
		r.comm += r.clock - t0
		return true, nil
	case e.Op.IsCompletion():
		// Determine which pending receives complete here, by poster GID.
		var toComplete []int
		used := map[int]bool{}
		for _, gid := range e.Reqs {
			for i, pr := range r.pending {
				if used[i] || pr.gid != gid {
					continue
				}
				toComplete = append(toComplete, i)
				used[i] = true
				break
			}
			// GIDs without a pending receive are completed sends: no wait.
		}
		// All needed messages must be available before the wait can finish.
		needed := map[msgKey]int{}
		for _, i := range toComplete {
			pr := r.pending[i]
			needed[msgKey{pr.peer, rid, pr.tag}]++
		}
		for key, cnt := range needed {
			if q := queues[key]; q == nil || q.len() < cnt {
				return false, nil
			}
		}
		advCompute()
		t0 := start()
		for _, i := range toComplete {
			pr := r.pending[i]
			avail := queues[msgKey{pr.peer, rid, pr.tag}].pop()
			r.clock = math.Max(r.clock, avail)
		}
		r.clock += p.OverheadNS / 2
		// Drop completed receives from pending, preserving order.
		if len(toComplete) > 0 {
			kept := r.pending[:0]
			for i, pr := range r.pending {
				if !used[i] {
					kept = append(kept, pr)
				}
			}
			r.pending = kept
		}
		r.comm += r.clock - t0
		return true, nil
	case e.Op.IsCollective() || e.Op == trace.OpFinalize:
		g := coll(r.collIdx)
		if !r.inColl {
			advCompute()
			if g.arrived == 0 {
				g.op, g.size = e.Op, e.Size
			} else if g.op != e.Op || g.size != e.Size {
				return false, fmt.Errorf("simmpi: collective mismatch at occurrence %d: rank %d %v(%d) vs %v(%d)",
					r.collIdx, rid, e.Op, e.Size, g.op, g.size)
			}
			g.arrived++
			g.maxT = math.Max(g.maxT, r.clock)
			r.inColl = true
			if g.arrived == n {
				g.finish = g.maxT + mpisim.CollectiveCostNS(p, n, e.Op, e.Size)
				g.done = true
			}
		}
		if !g.done {
			return false, nil
		}
		r.comm += g.finish - r.clock
		r.clock = g.finish
		r.collIdx++
		r.inColl = false
		return true, nil
	default:
		// MPI_Init and anything without timing semantics.
		advCompute()
		return true, nil
	}
}
