// Package simmpi is a trace-driven LogGP performance simulator, the stand-in
// for SIM-MPI in the paper's Section V / Figure 14 pipeline: decompressed
// CYPRESS traces (communication sequence + per-record sequential computation
// time) plus network parameters yield a predicted execution time.
//
// The simulator is a conservative discrete-event engine: each rank advances a
// local clock through its event sequence; point-to-point completions couple
// to the matching sender's injection time plus latency, and collectives
// synchronize all ranks with the binomial-tree cost model shared with the
// mpisim runtime. Point-to-point matches resolve through per-destination
// match-table shards keyed by (source, tag), and one engine serves both
// drivers: the sequential sweep (workers = 1) and the epoch-parallel
// lookahead-window driver in engine.go (workers > 1). Results are
// bit-identical at every worker count — see DESIGN.md "Parallel simulation"
// for the determinism argument.
package simmpi

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mpisim"
	"repro/internal/obs"
	ftrace "repro/internal/obs/trace"
	"repro/internal/trace"
)

// Result is the simulation outcome.
type Result struct {
	// TotalNS is the predicted job execution time (max over ranks).
	TotalNS float64
	// PerRankNS is each rank's final clock.
	PerRankNS []float64
	// CommNS is each rank's accumulated communication time.
	CommNS []float64
	// ComputeNS is each rank's accumulated computation time.
	ComputeNS []float64
}

// CommFraction returns the job-wide communication time share.
func (r Result) CommFraction() float64 {
	var comm, tot float64
	for i := range r.PerRankNS {
		comm += r.CommNS[i]
		tot += r.PerRankNS[i]
	}
	if tot == 0 {
		return 0
	}
	return comm / tot
}

type pendingRecv struct {
	gid  int32
	peer int
	tag  int
	size int
}

type simRank struct {
	src     EventSource
	cur     trace.Event
	have    bool // cur holds a blocked, unprocessed event
	started bool // src yielded at least one event
	done    bool // src exhausted after at least one event
	idx     int  // events processed (for diagnostics)
	clock   float64
	comm    float64
	compute float64
	pending []pendingRecv
	collIdx int
	inColl  bool

	// Completion scratch, reused across events so the steady-state loop is
	// allocation-free once warm (the historical engine built two maps per
	// completion op).
	toComplete []int
	used       []bool
	avails     []float64
}

type collGroup struct {
	op      trace.Op
	size    int
	arrived int
	maxT    float64
	done    bool
	finish  float64
}

// EventSource is a pull iterator over one rank's replayed event sequence, the
// streaming alternative to materializing a full []trace.Event per rank. The
// pointer returned by Next is only read before the following Next call, so
// implementations may reuse one event buffer (replay.Cursor does).
type EventSource interface {
	// Next returns the next event, or false when the sequence is exhausted.
	Next() (*trace.Event, bool)
}

// sliceSource adapts a materialized sequence to EventSource.
type sliceSource struct {
	evs []trace.Event
	i   int
}

func (s *sliceSource) Next() (*trace.Event, bool) {
	if s.i >= len(s.evs) {
		return nil, false
	}
	e := &s.evs[s.i]
	s.i++
	return e, true
}

// Simulate predicts execution for the given per-rank event sequences. It is
// SimulateStream over materialized slices; both entry points share one
// engine, so their results are identical for identical sequences.
func Simulate(seqs [][]trace.Event, params mpisim.Params) (Result, error) {
	return SimulatePar(seqs, params, 1)
}

// SimulatePar is Simulate with an explicit simulation worker bound; see
// SimulateStreamPar for the worker semantics.
func SimulatePar(seqs [][]trace.Event, params mpisim.Params, workers int) (Result, error) {
	srcs := make([]EventSource, len(seqs))
	for i := range seqs {
		srcs[i] = &sliceSource{evs: seqs[i]}
	}
	return SimulateStreamPar(srcs, params, workers)
}

// SimulateStream predicts execution for per-rank event streams pulled from
// iterators. Peak memory is O(ranks) cursor state plus the engine's in-flight
// message queues instead of O(total events): each rank's events are consumed
// as they are pulled, one at a time. The event an iterator yields is held by
// value across blocked retries, so sources may reuse their buffers.
func SimulateStream(srcs []EventSource, params mpisim.Params) (Result, error) {
	return SimulateStreamPar(srcs, params, 1)
}

// SimulateStreamPar is SimulateStream with an explicit worker bound for the
// epoch-parallel engine (workers <= 0 uses GOMAXPROCS; the bound is clamped
// to the rank count). workers == 1 runs the sequential sweep driver with
// zero locking; workers > 1 advances ranks concurrently inside conservative
// lookahead windows. The Result is bit-identical at every worker count.
// Each source is still consumed by at most one goroutine at a time (window
// barriers order the hand-offs), so replay cursors need no locking.
func SimulateStreamPar(srcs []EventSource, params mpisim.Params, workers int) (Result, error) {
	sp := sink.Start(obs.StageSimulate)
	defer sp.End()
	n := len(srcs)
	if n == 0 {
		return Result{}, fmt.Errorf("simmpi: no ranks")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	en := newEngine(srcs, params, workers > 1)
	var err error
	if en.par {
		err = en.runParallel(workers)
	} else {
		err = en.runSequential()
	}
	if err != nil {
		return Result{}, err
	}
	return en.result(), nil
}

// engine is the shared simulation state of both drivers. The par flag
// selects whether shard and collective access takes locks; with a single
// worker every lock is skipped, keeping the sequential path's per-event cost
// identical to the historical engine's.
type engine struct {
	params mpisim.Params
	n      int
	par    bool
	ranks  []simRank
	shards []matchShard

	collMu sync.Mutex
	colls  []*collGroup

	// ps is the parallel driver's scheduling state (engine.go); untouched by
	// the sequential driver.
	ps parState
}

func newEngine(srcs []EventSource, params mpisim.Params, par bool) *engine {
	en := &engine{params: params, n: len(srcs), par: par}
	en.ranks = make([]simRank, en.n)
	for i := range en.ranks {
		en.ranks[i].src = srcs[i]
	}
	en.shards = make([]matchShard, en.n)
	for i := range en.shards {
		en.shards[i].q = map[matchKey]*msgQueue{}
	}
	return en
}

// runSequential is the workers == 1 driver: sweep every rank in order, each
// processing events until it blocks, until all sources are drained or no
// sweep makes progress. Each sweep is reported as one window so the
// per-window metrics stay meaningful across drivers.
func (en *engine) runSequential() error {
	for {
		wsp := rec.Begin(ftrace.CatSim, ftrace.NameWindow, 0)
		progressed := 0
		remaining := 0
		for rid := range en.ranks {
			p, err := en.advance(rid, math.Inf(1))
			if err != nil {
				return err
			}
			progressed += p
			if !en.ranks[rid].done {
				remaining++
			}
		}
		wsp.End(int64(len(en.ranks)), int64(progressed))
		if sink.Enabled() {
			sink.Inc(obs.SimWindows)
			sink.Observe(obs.HistSimWindowEvents, int64(progressed))
		}
		if remaining == 0 {
			return nil
		}
		if progressed == 0 {
			return fmt.Errorf("simmpi: simulation stalled (mismatched trace?): %s", stallState(en.ranks))
		}
	}
}

// advance drains rank rid: it processes events until the rank blocks, its
// source is exhausted, or its clock passes windowEnd — checked only after at
// least one event processed, so every unblocked rank is guaranteed progress
// per visit (the liveness bound of the parallel driver). It returns the
// number of events processed.
func (en *engine) advance(rid int, windowEnd float64) (int, error) {
	r := &en.ranks[rid]
	processed := 0
	for {
		// Events are processed straight off the source's pointer and copied
		// into r.cur only when they block: the common case (event processes
		// first try) never pays the struct copy.
		var e *trace.Event
		if r.have {
			e = &r.cur
		} else {
			if r.done {
				break
			}
			ev, more := r.src.Next()
			if !more {
				if r.started {
					r.done = true
				}
				// else: source empty from the start — mirror the historical
				// engine, which never marked zero-event ranks done and
				// reported a stall instead.
				break
			}
			r.started = true
			e = ev
		}
		ok, err := en.step(r, rid, e)
		if err != nil {
			return processed, err
		}
		if !ok {
			if !r.have {
				r.cur = *e
				r.have = true
				sink.Inc(obs.SimBlockedCopies)
			}
			break
		}
		r.have = false
		r.idx++
		processed++
		if r.clock >= windowEnd {
			break
		}
	}
	return processed, nil
}

// result assembles the Result from the final per-rank state.
func (en *engine) result() Result {
	res := Result{
		PerRankNS: make([]float64, en.n),
		CommNS:    make([]float64, en.n),
		ComputeNS: make([]float64, en.n),
	}
	var processed int64
	for i := range en.ranks {
		res.PerRankNS[i] = en.ranks[i].clock
		res.CommNS[i] = en.ranks[i].comm
		res.ComputeNS[i] = en.ranks[i].compute
		res.TotalNS = math.Max(res.TotalNS, en.ranks[i].clock)
		processed += int64(en.ranks[i].idx)
	}
	sink.Add(obs.SimEventsProcessed, processed)
	return res
}

func stallState(ranks []simRank) string {
	for i := range ranks {
		if ranks[i].have {
			return fmt.Sprintf("rank %d stuck at event %d (%v)", i, ranks[i].idx, ranks[i].cur.Op)
		}
	}
	return "all done"
}

// sendMsg publishes one message arrival into the destination's shard and
// returns the key's queue depth after the push.
func (en *engine) sendMsg(dst int, k matchKey, t float64) int {
	sh := &en.shards[dst]
	if en.par {
		sh.mu.Lock()
		d := sh.push(k, t)
		sh.mu.Unlock()
		return d
	}
	return sh.push(k, t)
}

// recvMsg pops the head arrival for k at dst's shard, if one is queued.
// Popping before the clock advances is equivalent to the historical
// check-then-pop: the pop commits the step, and compute accumulation does
// not interact with the shard.
func (en *engine) recvMsg(dst int, k matchKey) (float64, bool) {
	sh := &en.shards[dst]
	if en.par {
		sh.mu.Lock()
		t, ok := sh.tryPop(k)
		sh.mu.Unlock()
		return t, ok
	}
	return sh.tryPop(k)
}

// completeRecvs checks, in one shard critical section, that every receive in
// r.toComplete has a queued message at rid's shard, and if so pops them all
// in completion order into r.avails. All keys live in rank rid's own shard,
// and only rid pops it, so a concurrent push between check and pop can only
// add availability, never steal a counted message.
func (en *engine) completeRecvs(rid int, r *simRank) bool {
	sh := &en.shards[rid]
	if en.par {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	// Entry i needs the queue for its key to hold every earlier same-key
	// completion plus itself. Pending lists are short, so the quadratic scan
	// beats the historical per-event count map.
	for i, pi := range r.toComplete {
		pr := &r.pending[pi]
		need := 1
		for _, pj := range r.toComplete[:i] {
			pq := &r.pending[pj]
			if pq.peer == pr.peer && pq.tag == pr.tag {
				need++
			}
		}
		if sh.depth(matchKey{pr.peer, pr.tag}) < need {
			return false
		}
	}
	r.avails = r.avails[:0]
	for _, pi := range r.toComplete {
		pr := &r.pending[pi]
		r.avails = append(r.avails, sh.pop(matchKey{pr.peer, pr.tag}))
	}
	return true
}

// step attempts to process one event; it returns false when the event must
// wait for progress elsewhere. Every clock/comm/compute update is a function
// of rank-local state plus values read from the rank's own match shard or
// collective group, so the outcome is invariant under the schedule that
// interleaved other ranks' steps (see DESIGN.md "Parallel simulation").
func (en *engine) step(r *simRank, rid int, e *trace.Event) (bool, error) {
	p := en.params
	// Compute time precedes the call.
	advCompute := func() {
		r.clock += e.ComputeNS
		r.compute += e.ComputeNS
	}

	switch {
	case e.Op == trace.OpInit:
		advCompute()
		return true, nil
	case e.Op == trace.OpSend || e.Op == trace.OpIsend:
		// Isend differs only in request bookkeeping; sends complete locally.
		advCompute()
		t0 := r.clock
		r.clock += p.InjectNS(e.Size)
		depth := en.sendMsg(e.Peer, matchKey{rid, e.Tag}, r.clock+p.LatencyNS)
		if sink.Enabled() {
			sink.Observe(obs.HistSimQueueDepth, int64(depth))
			sink.SetMax(obs.SimMatchDepthPeak, int64(depth))
		}
		r.comm += r.clock - t0
		return true, nil
	case e.Op == trace.OpIrecv:
		advCompute()
		t0 := r.clock
		r.clock += p.OverheadNS / 2
		r.pending = append(r.pending, pendingRecv{gid: e.GID, peer: e.Peer, tag: e.Tag, size: e.Size})
		r.comm += r.clock - t0
		return true, nil
	case e.Op == trace.OpRecv:
		avail, ok := en.recvMsg(rid, matchKey{e.Peer, e.Tag})
		if !ok {
			return false, nil // matching send not simulated yet
		}
		advCompute()
		t0 := r.clock
		r.clock = math.Max(r.clock+p.OverheadNS, avail)
		r.comm += r.clock - t0
		return true, nil
	case e.Op.IsCompletion():
		// Determine which pending receives complete here, by poster GID.
		r.toComplete = r.toComplete[:0]
		r.used = r.used[:0]
		for range r.pending {
			r.used = append(r.used, false)
		}
		for _, gid := range e.Reqs {
			for i := range r.pending {
				if r.used[i] || r.pending[i].gid != gid {
					continue
				}
				r.toComplete = append(r.toComplete, i)
				r.used[i] = true
				break
			}
			// GIDs without a pending receive are completed sends: no wait.
		}
		// All needed messages must be available before the wait can finish.
		if !en.completeRecvs(rid, r) {
			return false, nil
		}
		advCompute()
		t0 := r.clock
		for _, avail := range r.avails {
			r.clock = math.Max(r.clock, avail)
		}
		r.clock += p.OverheadNS / 2
		// Drop completed receives from pending, preserving order.
		if len(r.toComplete) > 0 {
			kept := r.pending[:0]
			for i := range r.pending {
				if !r.used[i] {
					kept = append(kept, r.pending[i])
				}
			}
			r.pending = kept
		}
		r.comm += r.clock - t0
		return true, nil
	case e.Op.IsCollective() || e.Op == trace.OpFinalize:
		return en.stepColl(r, rid, e)
	default:
		// Anything without timing semantics.
		advCompute()
		return true, nil
	}
}

// stepColl folds one rank's arrival into its next collective group. The
// group's entry time is a max over arrival clocks — order-independent, so
// the finish time is schedule-invariant. Which participant's mismatch is
// reported can vary with the schedule; whether one is reported cannot,
// since every participant eventually arrives and compares.
func (en *engine) stepColl(r *simRank, rid int, e *trace.Event) (bool, error) {
	if en.par {
		en.collMu.Lock()
		defer en.collMu.Unlock()
	}
	g := en.coll(r.collIdx)
	if !r.inColl {
		r.clock += e.ComputeNS
		r.compute += e.ComputeNS
		if g.arrived == 0 {
			g.op, g.size = e.Op, e.Size
		} else if g.op != e.Op || g.size != e.Size {
			return false, fmt.Errorf("simmpi: collective mismatch at occurrence %d: rank %d %v(%d) vs %v(%d)",
				r.collIdx, rid, e.Op, e.Size, g.op, g.size)
		}
		g.arrived++
		g.maxT = math.Max(g.maxT, r.clock)
		r.inColl = true
		if g.arrived == en.n {
			g.finish = g.maxT + mpisim.CollectiveCostNS(en.params, en.n, e.Op, e.Size)
			g.done = true
		}
	}
	if !g.done {
		return false, nil
	}
	r.comm += g.finish - r.clock
	r.clock = g.finish
	r.collIdx++
	r.inColl = false
	return true, nil
}

// coll lazily grows the collective table to hold index idx.
func (en *engine) coll(idx int) *collGroup {
	for len(en.colls) <= idx {
		en.colls = append(en.colls, &collGroup{})
	}
	return en.colls[idx]
}
