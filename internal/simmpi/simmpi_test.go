package simmpi

import (
	"math"
	"testing"

	"repro/internal/cst"
	"repro/internal/ctt"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/merge"
	"repro/internal/mpisim"
	"repro/internal/replay"
	"repro/internal/timestat"
	"repro/internal/trace"
)

// measureAndPredict runs src on n ranks (the "measured" execution), then
// compresses, merges, decompresses, and simulates the replayed trace.
func measureAndPredict(t testing.TB, src string, n int) (measured float64, res Result) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	tree, err := cst.Build(irProg)
	if err != nil {
		t.Fatalf("cst: %v", err)
	}
	comps := make([]*ctt.Compressor, n)
	sinks := make([]trace.Sink, n)
	for i := range comps {
		comps[i] = ctt.NewCompressor(tree, i, timestat.ModeMeanStddev)
		sinks[i] = comps[i]
	}
	params := mpisim.DefaultParams()
	measured, err = mpisim.Run(n, params, sinks, func(r *mpisim.Rank) {
		interp.Execute(prog, r)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ctts := make([]*ctt.RankCTT, n)
	for i, c := range comps {
		ctts[i] = c.Finish()
	}
	m, err := merge.All(ctts, 0)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	seqs := make([][]trace.Event, n)
	for rank := 0; rank < n; rank++ {
		seqs[rank], err = replay.Sequence(m.ForRank(rank), rank)
		if err != nil {
			t.Fatalf("replay rank %d: %v", rank, err)
		}
	}
	res, err = Simulate(seqs, params)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return measured, res
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Max(a, b) }

func TestPredictCollectiveOnly(t *testing.T) {
	measured, res := measureAndPredict(t, `
func main() {
	for var i = 0; i < 40; i = i + 1 {
		compute(50000);
		allreduce(64);
	}
}`, 8)
	if e := relErr(measured, res.TotalNS); e > 0.10 {
		t.Fatalf("prediction error %.1f%% (measured %.0f predicted %.0f)", e*100, measured, res.TotalNS)
	}
	if res.CommFraction() <= 0 || res.CommFraction() >= 1 {
		t.Fatalf("comm fraction = %f", res.CommFraction())
	}
}

func TestPredictJacobi(t *testing.T) {
	measured, res := measureAndPredict(t, `
func main() {
	for var k = 0; k < 30; k = k + 1 {
		if rank < size - 1 { send(rank + 1, 8000, 0); }
		if rank > 0 { recv(rank - 1, 8000, 0); }
		if rank > 0 { send(rank - 1, 8000, 0); }
		if rank < size - 1 { recv(rank + 1, 8000, 0); }
		compute(200000);
	}
	reduce(0, 8);
}`, 8)
	if e := relErr(measured, res.TotalNS); e > 0.15 {
		t.Fatalf("prediction error %.1f%% (measured %.0f predicted %.0f)", e*100, measured, res.TotalNS)
	}
	// Compute dominates this configuration.
	if res.CommFraction() > 0.5 {
		t.Fatalf("comm fraction = %f, expected compute-dominated", res.CommFraction())
	}
}

func TestPredictNonblockingExchange(t *testing.T) {
	measured, res := measureAndPredict(t, `
func main() {
	for var k = 0; k < 25; k = k + 1 {
		var r1 = isend((rank + 1) % size, 4096, 0);
		var r2 = irecv((rank + size - 1) % size, 4096, 0);
		waitall();
		compute(r1 + r2 + 30000);
	}
}`, 6)
	if e := relErr(measured, res.TotalNS); e > 0.15 {
		t.Fatalf("prediction error %.1f%%", e*100)
	}
}

func TestCommFractionGrowsWithRanks(t *testing.T) {
	src := `
func main() {
	for var k = 0; k < 15; k = k + 1 {
		compute(100000);
		alltoall(2048);
	}
}`
	_, small := measureAndPredict(t, src, 4)
	_, big := measureAndPredict(t, src, 16)
	if big.CommFraction() <= small.CommFraction() {
		t.Fatalf("comm%% should grow with P: %f vs %f", small.CommFraction(), big.CommFraction())
	}
}

func TestSimulateEmptyErrors(t *testing.T) {
	if _, err := Simulate(nil, mpisim.DefaultParams()); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSimulateStallDetected(t *testing.T) {
	// A receive with no matching send must stall, not hang.
	seqs := [][]trace.Event{
		{{Op: trace.OpRecv, Size: 8, Peer: 1, Tag: 0}},
		{{Op: trace.OpBarrier, Peer: trace.NoPeer}},
	}
	if _, err := Simulate(seqs, mpisim.DefaultParams()); err == nil {
		t.Fatal("stall not detected")
	}
}

func TestSimulateCollectiveMismatchDetected(t *testing.T) {
	seqs := [][]trace.Event{
		{{Op: trace.OpBarrier, Peer: trace.NoPeer}},
		{{Op: trace.OpAllreduce, Size: 8, Peer: trace.NoPeer}},
	}
	if _, err := Simulate(seqs, mpisim.DefaultParams()); err == nil {
		t.Fatal("mismatch not detected")
	}
}

func TestCausalCouplingThroughSend(t *testing.T) {
	// Rank 0 computes 1ms then sends; rank 1 receives immediately. The
	// receiver's predicted clock must include the sender's compute time.
	seqs := [][]trace.Event{
		{{Op: trace.OpSend, Size: 8, Peer: 1, Tag: 0, ComputeNS: 1e6}},
		{{Op: trace.OpRecv, Size: 8, Peer: 0, Tag: 0}},
	}
	res, err := Simulate(seqs, mpisim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRankNS[1] < 1e6 {
		t.Fatalf("receiver clock %f ignores sender compute", res.PerRankNS[1])
	}
	if res.CommNS[1] <= 0 {
		t.Fatal("receive recorded no comm time")
	}
}
