package simmpi

import (
	"reflect"
	"testing"

	"repro/internal/mpisim"
	"repro/internal/trace"
)

// reusingSource yields its events through one reused buffer, the contract
// replay.Cursor relies on: the engine must copy the event it is blocked on,
// never hold the pointer across Next calls.
type reusingSource struct {
	evs []trace.Event
	i   int
	buf trace.Event
}

func (s *reusingSource) Next() (*trace.Event, bool) {
	if s.i >= len(s.evs) {
		return nil, false
	}
	s.buf = s.evs[s.i]
	s.i++
	// Poison the previous hand-out: anyone aliasing the pointer across calls
	// sees garbage, so identity with the slice path proves value semantics.
	return &s.buf, true
}

// exchangeSeqs is a 3-rank fixture that forces blocked retries: rank 0's recv
// waits on rank 2's send, which is processed after rank 0's first attempt, so
// the engine revisits held events — through the buffer-reusing source this
// only works if the event was copied.
func exchangeSeqs() [][]trace.Event {
	return [][]trace.Event{
		{
			{Op: trace.OpRecv, Size: 512, Peer: 2, Tag: 3, ComputeNS: 100},
			{Op: trace.OpSend, Size: 256, Peer: 1, Tag: 4, ComputeNS: 50},
			{Op: trace.OpAllreduce, Size: 8, Peer: trace.NoPeer},
		},
		{
			{Op: trace.OpRecv, Size: 256, Peer: 0, Tag: 4, ComputeNS: 20},
			{Op: trace.OpAllreduce, Size: 8, Peer: trace.NoPeer},
		},
		{
			{Op: trace.OpSend, Size: 512, Peer: 0, Tag: 3, ComputeNS: 900},
			{Op: trace.OpAllreduce, Size: 8, Peer: trace.NoPeer},
		},
	}
}

// TestSimulateStreamMatchesSimulate pins the shared-engine guarantee: pulling
// events one at a time through buffer-reusing iterators produces exactly the
// result of simulating fully materialized sequences.
func TestSimulateStreamMatchesSimulate(t *testing.T) {
	seqs := exchangeSeqs()
	params := mpisim.DefaultParams()
	want, err := Simulate(seqs, params)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]EventSource, len(seqs))
	for i := range seqs {
		srcs[i] = &reusingSource{evs: seqs[i]}
	}
	got, err := SimulateStream(srcs, params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("stream result differs from materialized result:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimulateStreamEmptyRankStalls pins the historical semantics the stream
// engine must preserve: a rank whose sequence is empty from the start is
// reported as a stall, exactly like the materializing engine always did.
func TestSimulateStreamEmptyRankStalls(t *testing.T) {
	srcs := []EventSource{
		&reusingSource{evs: []trace.Event{{Op: trace.OpBarrier, Peer: trace.NoPeer}}},
		&reusingSource{},
	}
	if _, err := SimulateStream(srcs, mpisim.DefaultParams()); err == nil {
		t.Fatal("empty-rank stall not detected")
	}
}
