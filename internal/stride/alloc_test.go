package stride

import "testing"

// TestAppendConstantStrideNoAlloc pins the inline representation: a vector
// whose values follow one arithmetic progression stays in the inline run
// array, so steady-state Append must not allocate at all. This is the shape
// loop-count vectors take in SPMD programs (every activation runs the same
// trip count), i.e. the compressor's common case.
func TestAppendConstantStrideNoAlloc(t *testing.T) {
	cases := []struct {
		name string
		next func(i int64) int64
	}{
		{"constant", func(int64) int64 { return 7 }},
		{"arithmetic", func(i int64) int64 { return 100 + 3*i }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var v Vector
			i := int64(0)
			step := func() {
				v.Append(tc.next(i))
				i++
			}
			step() // first append opens the run
			step() // second fixes the stride
			allocs := testing.AllocsPerRun(1000, step)
			if allocs != 0 {
				t.Errorf("steady-state Append allocates %.1f allocs/op, want 0", allocs)
			}
			if v.Len() != i {
				t.Fatalf("Len = %d, want %d", v.Len(), i)
			}
			if got := v.At(v.Len() - 1); got != tc.next(i-1) {
				t.Fatalf("At(last) = %d, want %d", got, tc.next(i-1))
			}
		})
	}
}

// TestSetAddSequentialNoAlloc covers the Set wrapper: a branch arm taken on
// every activation records the activation indices 0,1,2,... — one stride-1
// run — so steady-state Add must stay allocation-free.
func TestSetAddSequentialNoAlloc(t *testing.T) {
	var s Set
	i := int64(0)
	step := func() {
		s.Add(i)
		i++
	}
	step()
	step()
	allocs := testing.AllocsPerRun(1000, step)
	if allocs != 0 {
		t.Errorf("sequential Set.Add allocates %.1f allocs/op, want 0", allocs)
	}
	if !s.Contains(0) || !s.Contains(i-1) || s.Contains(i) {
		t.Fatal("set contents wrong")
	}
}
