package stride

// RunCount returns the number of stride runs backing the sequence. Together
// with Len it quantifies compressibility: a vector whose values all continue
// one arithmetic progression has RunCount 1 regardless of length.
func (v *Vector) RunCount() int { return int(v.nr) }

// RawBytes returns the uncompressed footprint of the sequence: one 8-byte
// word per stored value. Comparing against SizeBytes (24 bytes per run, the
// same conservative bound used throughout the compression-ratio accounting)
// yields the bytes the stride encoding saves — or wastes, for incompressible
// sequences whose runs are mostly singletons.
func (v *Vector) RawBytes() int64 { return 8 * v.n }
