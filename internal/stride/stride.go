// Package stride implements run compression of integer sequences using
// <first, stride, count> tuples, the core encoding CYPRESS uses for loop
// iteration counts and branch taken-indices (paper Section IV, Figures 10-11).
//
// A Vector stores an ordered sequence of int64 values; consecutive values
// with a constant difference collapse into a single run. Appending is O(1)
// amortized, random access is O(log r) in the number of runs, and two vectors
// compare in O(r) time.
//
// Vectors carry a small inline run buffer: sequences that compress to at most
// inlineRuns runs (the overwhelmingly common case — a loop vertex whose trip
// count never changes is exactly one run) never touch the heap. The runs
// spill to a heap slice only when the sequence needs more runs.
package stride

import (
	"fmt"
	"strings"

	"repro/internal/fp"
)

// Run is a maximal arithmetic subsequence: Count values starting at First
// with common difference Stride. A Run with Count == 1 has Stride 0.
type Run struct {
	First  int64
	Stride int64
	Count  int64
}

// Last returns the final value covered by the run.
func (r Run) Last() int64 { return r.First + (r.Count-1)*r.Stride }

// At returns the i-th value of the run (0-based). It panics if i is out of
// range, which indicates a bug in the caller's cursor arithmetic.
func (r Run) At(i int64) int64 {
	if i < 0 || i >= r.Count {
		panic(fmt.Sprintf("stride: run index %d out of range [0,%d)", i, r.Count))
	}
	return r.First + i*r.Stride
}

// inlineRuns is the number of runs stored inline before spilling to the heap.
const inlineRuns = 2

// Vector is an append-only integer sequence stored as stride runs.
// The zero value is an empty vector ready for use.
//
// Copying a Vector whose runs are still inline yields an independent vector;
// once spilled, copies share the heap run storage (as the pre-inline
// implementation always did), so treat copies as read-only views.
type Vector struct {
	inl  [inlineRuns]Run
	heap []Run // non-nil once the sequence needs more than inlineRuns runs
	nr   int32 // number of runs (in inl[:nr] or heap, never both)
	n    int64 // total number of values
}

// view returns the current runs without copying. The slice aliases either the
// inline buffer or the heap storage and is invalidated by the next mutation.
func (v *Vector) view() []Run {
	if v.heap != nil {
		return v.heap
	}
	return v.inl[:v.nr]
}

// lastRun returns a pointer to the final run. Caller guarantees nr > 0.
func (v *Vector) lastRun() *Run {
	if v.heap != nil {
		return &v.heap[len(v.heap)-1]
	}
	return &v.inl[v.nr-1]
}

// pushRun appends a run, spilling inline storage to the heap when full.
func (v *Vector) pushRun(r Run) {
	if v.heap == nil {
		if int(v.nr) < inlineRuns {
			v.inl[v.nr] = r
			v.nr++
			return
		}
		v.heap = make([]Run, v.nr, 2*inlineRuns+2)
		copy(v.heap, v.inl[:v.nr])
	}
	v.heap = append(v.heap, r)
	v.nr++
}

// popRun removes the final run. Caller guarantees nr > 0.
func (v *Vector) popRun() {
	v.nr--
	if v.heap != nil {
		v.heap = v.heap[:v.nr]
	}
}

// Len returns the number of logical values stored.
func (v *Vector) Len() int64 { return v.n }

// Runs returns the underlying runs. The slice must not be modified and is
// valid only until the next mutation of the vector.
func (v *Vector) Runs() []Run { return v.view() }

// Append adds x to the end of the sequence, extending the final run when x
// continues its arithmetic progression. Appends that extend a run — every
// append after the second in a constant-stride sequence — are allocation-free.
func (v *Vector) Append(x int64) {
	v.n++
	if v.nr == 0 {
		v.pushRun(Run{First: x, Count: 1})
		return
	}
	last := v.lastRun()
	switch last.Count {
	case 1:
		// A singleton can adopt any stride.
		last.Stride = x - last.First
		last.Count = 2
		return
	default:
		if last.Last()+last.Stride == x {
			last.Count++
			return
		}
	}
	v.pushRun(Run{First: x, Count: 1})
}

// AppendRun adds an explicit run to the end of the sequence. It is used when
// bulk-loading decoded vectors; no merging with the previous run is attempted
// beyond the trivial continuation check.
func (v *Vector) AppendRun(r Run) {
	if r.Count <= 0 {
		return
	}
	v.n += r.Count
	if v.nr > 0 {
		last := v.lastRun()
		if last.Stride == r.Stride && last.Last()+last.Stride == r.First {
			last.Count += r.Count
			return
		}
	}
	v.pushRun(r)
}

// ExtendCanonical appends the run's values as if by repeated Append, in O(1)
// amortized time: at most three leading values go through Append (enough for
// stride adoption and run merging to settle), then the remainder extends the
// final run in bulk. Vectors built through ExtendCanonical therefore compare
// Equal to vectors built value-by-value from the same sequence — the
// property the merge's rank-set fast path relies on for byte-stable output.
func (v *Vector) ExtendCanonical(r Run) {
	if r.Count <= 0 {
		return
	}
	if v.nr > 0 {
		// Bulk fast path: the run continues the final run's progression, so
		// every value would extend it — exactly what repeated Append does to
		// a run with Count >= 2 (singletons adopt strides and need the
		// general path below). This is the steady state of the merge's
		// rank-set growth: appending the next contiguous rank block.
		last := v.lastRun()
		if last.Count > 1 && last.Last()+last.Stride == r.First &&
			(r.Count == 1 || r.Stride == last.Stride) {
			last.Count += r.Count
			v.n += r.Count
			return
		}
	}
	lead := r.Count
	if lead > 3 {
		lead = 3
	}
	for i := int64(0); i < lead; i++ {
		v.Append(r.At(i))
	}
	if r.Count <= 3 {
		return
	}
	// After three appends of an arithmetic sequence with stride r.Stride,
	// the final run provably ends at r.At(2) with stride r.Stride, so the
	// remaining values extend it directly.
	last := v.lastRun()
	rest := r.Count - 3
	last.Count += rest
	v.n += rest
}

// Hash folds the vector's canonical structure into h. Vectors that compare
// Equal fold identically: singleton runs fold a zero stride, mirroring
// Equal's stride-insensitivity for Count==1 runs.
func (v *Vector) Hash(h fp.Hash) fp.Hash {
	h = h.Word(uint64(v.n))
	if v.n == 0 {
		// Only the empty vector has n == 0, so the single length word is an
		// injective encoding; skipping the run fold keeps the hot merge
		// fingerprint cheap for the empty Counts/Taken of comm leaves.
		return h
	}
	h = h.Word(uint64(v.nr))
	for _, r := range v.view() {
		s := r.Stride
		if r.Count == 1 {
			s = 0
		}
		h = h.Int(r.First).Int(s).Int(r.Count)
	}
	return h
}

// SetLast replaces the final value of the sequence. It panics when empty.
func (v *Vector) SetLast(x int64) {
	if v.n == 0 {
		panic("stride: SetLast on empty vector")
	}
	last := v.lastRun()
	last.Count--
	v.n--
	if last.Count == 0 {
		v.popRun()
	}
	v.Append(x)
}

// At returns the i-th value. It panics when i is out of range.
//
// The lookup scans runs linearly. Compressed sequences have very few runs —
// that is the point of the encoding — so a scan beats maintaining a prefix
// index, which would cost every Vector a slice header and every mutation a
// dirty bit (rank sets alone allocate one Vector per merge entry).
func (v *Vector) At(i int64) int64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("stride: index %d out of range [0,%d)", i, v.n))
	}
	rem := i
	for _, r := range v.view() {
		if rem < r.Count {
			return r.At(rem)
		}
		rem -= r.Count
	}
	panic("stride: unreachable")
}

// Values materializes the full sequence. Intended for tests and small dumps.
func (v *Vector) Values() []int64 {
	out := make([]int64, 0, v.n)
	for _, r := range v.view() {
		for i := int64(0); i < r.Count; i++ {
			out = append(out, r.At(i))
		}
	}
	return out
}

// Equal reports whether two vectors encode the same sequence. Because both
// encoders are canonical for the same input order, run-wise comparison
// suffices for vectors built through Append.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n || v.nr != o.nr {
		return false
	}
	vr, or := v.view(), o.view()
	for i, r := range vr {
		q := or[i]
		if r.First != q.First || r.Count != q.Count {
			return false
		}
		if r.Count > 1 && r.Stride != q.Stride {
			return false
		}
	}
	return true
}

// Sum returns the sum of all values; used to recover the total event count
// beneath a loop vertex.
func (v *Vector) Sum() int64 {
	var s int64
	for _, r := range v.view() {
		// Sum of arithmetic series: n*first + stride*(0+1+...+(n-1)).
		s += r.Count*r.First + r.Stride*(r.Count-1)*r.Count/2
	}
	return s
}

// SizeBytes estimates the serialized footprint: three varint-ish words per
// run. The constant 8 is a deliberate upper-bound per word so that size
// comparisons between compressors are conservative for CYPRESS.
func (v *Vector) SizeBytes() int64 { return int64(v.nr) * 24 }

// String renders the vector in the paper's tuple notation.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, r := range v.view() {
		if i > 0 {
			b.WriteByte(' ')
		}
		if r.Count == 1 {
			fmt.Fprintf(&b, "<%d>", r.First)
		} else {
			fmt.Fprintf(&b, "<%d,%d,%d>", r.First, r.Last(), r.Stride)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Set is a strictly-increasing stride-compressed integer set, used for branch
// taken-indices (values are activation numbers) and similar index sets.
type Set struct {
	Vector
}

// Add inserts x, which must be greater than every element already present.
func (s *Set) Add(x int64) {
	if s.n > 0 {
		last := s.lastRun().Last()
		if x <= last {
			panic(fmt.Sprintf("stride: Set.Add out of order: %d after %d", x, last))
		}
	}
	s.Append(x)
}

// Contains reports whether x is in the set using binary search over runs.
func (s *Set) Contains(x int64) bool {
	// Runs are in increasing order of First for a strictly increasing set.
	runs := s.view()
	lo, hi := 0, len(runs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		r := runs[mid]
		switch {
		case x < r.First:
			hi = mid - 1
		case x > r.Last():
			lo = mid + 1
		default:
			if r.Count == 1 {
				return x == r.First
			}
			return (x-r.First)%r.Stride == 0
		}
	}
	return false
}
