package stride

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendConstant(t *testing.T) {
	var v Vector
	for i := 0; i < 100; i++ {
		v.Append(7)
	}
	if got := len(v.Runs()); got != 1 {
		t.Fatalf("constant sequence should collapse to 1 run, got %d", got)
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d, want 100", v.Len())
	}
	if v.At(57) != 7 {
		t.Fatalf("At(57) = %d, want 7", v.At(57))
	}
}

func TestAppendArithmetic(t *testing.T) {
	var v Vector
	for i := int64(0); i < 50; i++ {
		v.Append(3 + 5*i)
	}
	if got := len(v.Runs()); got != 1 {
		t.Fatalf("arithmetic sequence should collapse to 1 run, got %d", got)
	}
	r := v.Runs()[0]
	if r.First != 3 || r.Stride != 5 || r.Count != 50 {
		t.Fatalf("run = %+v", r)
	}
	if r.Last() != 3+5*49 {
		t.Fatalf("Last = %d", r.Last())
	}
}

func TestPaperNestedLoopExample(t *testing.T) {
	// Paper Fig 10: inner loop iteration counts 0,1,2,...,k-1 compress to
	// a single <0,k-1,1> tuple.
	const k = 20
	var v Vector
	for i := int64(0); i < k; i++ {
		v.Append(i)
	}
	if got := v.String(); got != "[<0,19,1>]" {
		t.Fatalf("String = %q", got)
	}
	if v.Sum() != k*(k-1)/2 {
		t.Fatalf("Sum = %d", v.Sum())
	}
}

func TestMixedRuns(t *testing.T) {
	var v Vector
	in := []int64{5, 5, 5, 1, 3, 5, 7, 100}
	for _, x := range in {
		v.Append(x)
	}
	if !reflect.DeepEqual(v.Values(), in) {
		t.Fatalf("Values = %v, want %v", v.Values(), in)
	}
	for i, want := range in {
		if got := v.At(int64(i)); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	var a, b Vector
	for i := int64(0); i < 30; i++ {
		a.Append(i % 7)
		b.Append(i % 7)
	}
	if !a.Equal(&b) {
		t.Fatal("identical vectors must be Equal")
	}
	b.Append(0)
	if a.Equal(&b) {
		t.Fatal("length mismatch must not be Equal")
	}
	var c Vector
	for i := int64(0); i < 31; i++ {
		c.Append(i % 7)
	}
	if a.Equal(&c) {
		t.Fatal("different sequences must not be Equal")
	}
}

func TestAppendRunContinuation(t *testing.T) {
	var v Vector
	v.AppendRun(Run{First: 0, Stride: 2, Count: 5}) // 0 2 4 6 8
	v.AppendRun(Run{First: 10, Stride: 2, Count: 3})
	if len(v.Runs()) != 1 {
		t.Fatalf("continuation run should merge, got %d runs", len(v.Runs()))
	}
	if v.Len() != 8 || v.At(7) != 14 {
		t.Fatalf("Len=%d At(7)=%d", v.Len(), v.At(7))
	}
	v.AppendRun(Run{First: 0, Count: 0}) // no-op
	if v.Len() != 8 {
		t.Fatal("empty run must be ignored")
	}
}

func TestSetBranchAlternation(t *testing.T) {
	// Paper Fig 11: branch taken at iterations <0,8,2> and <1,9,2>.
	var even, odd Set
	for i := int64(0); i < 10; i++ {
		if i%2 == 0 {
			even.Add(i)
		} else {
			odd.Add(i)
		}
	}
	if even.String() != "[<0,8,2>]" || odd.String() != "[<1,9,2>]" {
		t.Fatalf("even=%s odd=%s", even.String(), odd.String())
	}
	for i := int64(0); i < 10; i++ {
		if even.Contains(i) != (i%2 == 0) {
			t.Fatalf("even.Contains(%d) wrong", i)
		}
		if odd.Contains(i) != (i%2 == 1) {
			t.Fatalf("odd.Contains(%d) wrong", i)
		}
	}
	if even.Contains(-1) || even.Contains(10) || even.Contains(11) {
		t.Fatal("out-of-range Contains must be false")
	}
}

func TestSetAddOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order Add")
		}
	}()
	var s Set
	s.Add(5)
	s.Add(5)
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range At")
		}
	}()
	var v Vector
	v.Append(1)
	v.At(1)
}

func TestSumMatchesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var v Vector
	var want int64
	for i := 0; i < 1000; i++ {
		x := int64(rng.Intn(20))
		v.Append(x)
		want += x
	}
	if v.Sum() != want {
		t.Fatalf("Sum = %d, want %d", v.Sum(), want)
	}
}

// Property: for any input sequence, Values() round-trips and At() agrees.
func TestQuickRoundTrip(t *testing.T) {
	f := func(xs []int16) bool {
		var v Vector
		for _, x := range xs {
			v.Append(int64(x))
		}
		if v.Len() != int64(len(xs)) {
			return false
		}
		vals := v.Values()
		for i, x := range xs {
			if vals[i] != int64(x) || v.At(int64(i)) != int64(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Set.Contains agrees with a map for strictly increasing input.
func TestQuickSetMembership(t *testing.T) {
	f := func(deltas []uint8) bool {
		var s Set
		seen := map[int64]bool{}
		cur := int64(0)
		for _, d := range deltas {
			cur += int64(d) + 1 // strictly increasing
			s.Add(cur)
			seen[cur] = true
		}
		for x := int64(0); x <= cur+2; x++ {
			if s.Contains(x) != seen[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionEffectiveness(t *testing.T) {
	// A million-element arithmetic sequence must stay O(1) in runs.
	var v Vector
	for i := int64(0); i < 1_000_000; i++ {
		v.Append(i * 3)
	}
	if len(v.Runs()) != 1 {
		t.Fatalf("runs = %d, want 1", len(v.Runs()))
	}
	if v.SizeBytes() != 24 {
		t.Fatalf("SizeBytes = %d", v.SizeBytes())
	}
}

func BenchmarkAppendArithmetic(b *testing.B) {
	var v Vector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Append(int64(i))
	}
}

func BenchmarkAt(b *testing.B) {
	var v Vector
	for i := int64(0); i < 1000; i++ {
		v.Append(i % 13) // many runs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.At(int64(i) % v.Len())
	}
}
