// Package timestat records communication-time statistics for compressed trace
// records. The paper (Section IV-A) supports two modes: mean plus standard
// deviation of repeated operations, and a histogram of the time distribution.
// Both are implemented here; Stat always maintains Welford moments and can
// optionally carry a log₂-bucketed histogram.
package timestat

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fp"
)

// HistBuckets is the number of log₂ histogram buckets. Bucket i covers
// durations in [2^i, 2^(i+1)) nanoseconds; bucket 0 also absorbs sub-ns
// values. 48 buckets cover ~3 days, far beyond any single MPI operation.
const HistBuckets = 48

// Mode selects how time is recorded.
type Mode uint8

const (
	// ModeMeanStddev records running mean and standard deviation only.
	ModeMeanStddev Mode = iota
	// ModeHistogram additionally maintains a log-scale histogram.
	ModeHistogram
)

// Stat accumulates durations (in nanoseconds) with Welford's online
// algorithm, so merging records never needs the raw samples.
type Stat struct {
	N    int64
	Mean float64
	m2   float64
	Min  float64
	Max  float64
	Hist []uint32 // nil unless histogram mode
}

// New returns a heap-allocated Stat in the given mode. Hot paths that embed
// stats by value should use Make or Init instead, which allocate nothing in
// ModeMeanStddev.
func New(mode Mode) *Stat {
	s := &Stat{}
	s.Init(mode)
	return s
}

// Make returns a ready-to-use Stat value. In ModeMeanStddev it performs no
// heap allocation, which is what lets trace records embed their accumulators
// by value instead of pointing at two heap objects per record.
func Make(mode Mode) Stat {
	var s Stat
	s.Init(mode)
	return s
}

// Init (re)initializes s in place for the given mode, reusing an existing
// histogram buffer when present.
func (s *Stat) Init(mode Mode) {
	hist := s.Hist
	*s = Stat{Min: math.Inf(1), Max: math.Inf(-1)}
	if mode == ModeHistogram {
		if hist != nil {
			for i := range hist {
				hist[i] = 0
			}
			s.Hist = hist
		} else {
			s.Hist = make([]uint32, HistBuckets)
		}
	}
}

// MeanSeeded returns a value-mode stat holding n samples pinned at mean, used
// when materializing partial cycle repetitions whose true samples were folded
// into the block records.
func MeanSeeded(mean float64, n int64) Stat {
	return Stat{N: n, Mean: mean, Min: mean, Max: mean}
}

// Add records one duration in nanoseconds.
func (s *Stat) Add(ns float64) {
	s.N++
	d := ns - s.Mean
	s.Mean += d / float64(s.N)
	s.m2 += d * (ns - s.Mean)
	if ns < s.Min {
		s.Min = ns
	}
	if ns > s.Max {
		s.Max = ns
	}
	if s.Hist != nil {
		s.Hist[bucket(ns)]++
	}
}

func bucket(ns float64) int {
	if ns < 1 {
		return 0
	}
	b := int(math.Log2(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// BucketLow returns the lower bound (ns) of histogram bucket i.
func BucketLow(i int) float64 {
	return math.Exp2(float64(i))
}

// Stddev returns the sample standard deviation, 0 for fewer than two samples.
func (s *Stat) Stddev() float64 {
	if s.N < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.N-1))
}

// Sum returns the total accumulated time in nanoseconds.
func (s *Stat) Sum() float64 { return s.Mean * float64(s.N) }

// Merge folds o into s. Both must use the same mode; merging a histogram
// stat into a non-histogram stat drops the histogram, never the moments.
func (s *Stat) Merge(o *Stat) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		s.N, s.Mean, s.m2, s.Min, s.Max = o.N, o.Mean, o.m2, o.Min, o.Max
	} else {
		// Chan et al. parallel combination of Welford moments.
		n1, n2 := float64(s.N), float64(o.N)
		delta := o.Mean - s.Mean
		tot := n1 + n2
		s.Mean += delta * n2 / tot
		s.m2 += o.m2 + delta*delta*n1*n2/tot
		s.N += o.N
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	if s.Hist != nil && o.Hist != nil {
		for i := range s.Hist {
			s.Hist[i] += o.Hist[i]
		}
	}
}

// HashShape folds the stat's storage shape (histogram presence) into h. The
// merge fingerprint covers shape, not the accumulated moments — statistics
// are volatile payload that merging folds together, so they must not split
// groups — but shape-mixed record pairs defer to the exhaustive comparison
// path rather than the O(1) fingerprint match.
func (s *Stat) HashShape(h fp.Hash) fp.Hash { return h.Bool(s.Hist != nil) }

// Clone returns a deep copy.
func (s *Stat) Clone() *Stat {
	c := *s
	if s.Hist != nil {
		c.Hist = append([]uint32(nil), s.Hist...)
	}
	return &c
}

// SizeBytes estimates the serialized footprint: the five moments, plus the
// non-zero histogram buckets when present.
func (s *Stat) SizeBytes() int64 {
	n := int64(5 * 8)
	for _, h := range s.Hist {
		if h != 0 {
			n += 6 // bucket index + varint count
		}
	}
	return n
}

// String summarizes the stat for dumps.
func (s *Stat) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0fns sd=%.0fns", s.N, s.Mean, s.Stddev())
	if s.Hist != nil {
		nz := 0
		for _, h := range s.Hist {
			if h != 0 {
				nz++
			}
		}
		fmt.Fprintf(&b, " hist(%d buckets)", nz)
	}
	return b.String()
}
