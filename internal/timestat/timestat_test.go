package timestat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStddev(t *testing.T) {
	s := New(ModeMeanStddev)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N != 8 || !almost(s.Mean, 5, 1e-9) {
		t.Fatalf("N=%d Mean=%f", s.N, s.Mean)
	}
	// Sample stddev of the classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almost(s.Stddev(), want, 1e-9) {
		t.Fatalf("Stddev = %f, want %f", s.Stddev(), want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min=%f Max=%f", s.Min, s.Max)
	}
	if !almost(s.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %f", s.Sum())
	}
}

func TestSingleAndEmpty(t *testing.T) {
	s := New(ModeMeanStddev)
	if s.Stddev() != 0 {
		t.Fatal("empty stddev must be 0")
	}
	s.Add(100)
	if s.Stddev() != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
	if s.Mean != 100 || s.Min != 100 || s.Max != 100 {
		t.Fatalf("moments wrong: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	s := New(ModeHistogram)
	s.Add(0.5) // sub-ns → bucket 0
	s.Add(1)   // bucket 0
	s.Add(2)   // bucket 1
	s.Add(3)   // bucket 1
	s.Add(1024)
	s.Add(1 << 60) // clamps to last bucket
	if s.Hist[0] != 2 || s.Hist[1] != 2 || s.Hist[10] != 1 || s.Hist[HistBuckets-1] != 1 {
		t.Fatalf("hist = %v", s.Hist)
	}
	if BucketLow(10) != 1024 {
		t.Fatalf("BucketLow(10) = %f", BucketLow(10))
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, all := New(ModeHistogram), New(ModeHistogram), New(ModeHistogram)
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 1e6
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N != all.N {
		t.Fatalf("N=%d want %d", a.N, all.N)
	}
	if !almost(a.Mean, all.Mean, 1e-6) || !almost(a.Stddev(), all.Stddev(), 1e-6) {
		t.Fatalf("merged mean/sd %f/%f want %f/%f", a.Mean, a.Stddev(), all.Mean, all.Stddev())
	}
	if a.Min != all.Min || a.Max != all.Max {
		t.Fatal("min/max wrong after merge")
	}
	for i := range a.Hist {
		if a.Hist[i] != all.Hist[i] {
			t.Fatalf("hist bucket %d: %d want %d", i, a.Hist[i], all.Hist[i])
		}
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	a, b := New(ModeMeanStddev), New(ModeMeanStddev)
	b.Add(5)
	b.Add(7)
	a.Merge(b)
	if a.N != 2 || !almost(a.Mean, 6, 1e-9) {
		t.Fatalf("merge into empty: %+v", a)
	}
	// Merging an empty stat is a no-op.
	before := *a
	a.Merge(New(ModeMeanStddev))
	if a.N != before.N || a.Mean != before.Mean {
		t.Fatal("merging empty changed stat")
	}
}

func TestClone(t *testing.T) {
	s := New(ModeHistogram)
	s.Add(10)
	c := s.Clone()
	c.Add(1000)
	if s.N != 1 || c.N != 2 {
		t.Fatal("clone is not independent")
	}
	if s.Hist[3] != c.Hist[3] {
		t.Fatal("clone lost shared history")
	}
}

func TestSizeBytes(t *testing.T) {
	s := New(ModeMeanStddev)
	if s.SizeBytes() != 40 {
		t.Fatalf("plain SizeBytes = %d", s.SizeBytes())
	}
	h := New(ModeHistogram)
	h.Add(2)
	h.Add(1024)
	if h.SizeBytes() != 40+12 {
		t.Fatalf("hist SizeBytes = %d", h.SizeBytes())
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b, all := New(ModeMeanStddev), New(ModeMeanStddev), New(ModeMeanStddev)
		for _, x := range xs {
			v := float64(x) // realistic ns-scale durations
			a.Add(v)
			all.Add(v)
		}
		for _, y := range ys {
			v := float64(y)
			b.Add(v)
			all.Add(v)
		}
		a.Merge(b)
		if a.N != all.N {
			return false
		}
		if a.N == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean))
		return almost(a.Mean, all.Mean, tol) && almost(a.Stddev(), all.Stddev(), math.Sqrt(tol))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(ModeHistogram)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 100000))
	}
}
