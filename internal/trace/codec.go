package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The raw binary trace codec is the uncompressed on-disk format, playing the
// role of OTF in the paper: one varint-packed record per event, one stream
// per rank. The Gzip baseline compresses exactly this stream.

// Writer encodes events to a compact binary stream.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   int64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (w *Writer) uvarint(x uint64) {
	n := binary.PutUvarint(w.buf[:], x)
	w.w.Write(w.buf[:n])
	w.n += int64(n)
}

func (w *Writer) varint(x int64) {
	n := binary.PutVarint(w.buf[:], x)
	w.w.Write(w.buf[:n])
	w.n += int64(n)
}

// WriteEvent appends one event record.
func (w *Writer) WriteEvent(e *Event) {
	w.uvarint(uint64(e.Op))
	w.uvarint(uint64(e.Size))
	w.varint(int64(e.Peer))
	w.uvarint(uint64(e.Tag))
	w.uvarint(uint64(e.Comm))
	w.varint(int64(e.GID))
	flag := uint64(0)
	if e.Wildcard {
		flag = 1
	}
	w.uvarint(flag)
	w.varint(int64(e.ReqID))
	w.uvarint(uint64(len(e.Reqs)))
	for _, r := range e.Reqs {
		w.varint(int64(r))
	}
	w.uvarint(uint64(len(e.ReqSrcs)))
	for _, r := range e.ReqSrcs {
		w.varint(int64(r))
	}
	w.uvarint(math.Float64bits(e.DurationNS))
	w.uvarint(math.Float64bits(e.ComputeNS))
}

// Flush flushes buffered output and returns the total bytes written.
func (w *Writer) Flush() (int64, error) {
	if err := w.w.Flush(); err != nil {
		return w.n, err
	}
	return w.n, nil
}

// Reader decodes events produced by Writer.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// ReadEvent decodes the next event. It returns io.EOF cleanly at stream end.
func (r *Reader) ReadEvent() (Event, error) {
	var e Event
	op, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, err // io.EOF passes through untouched
	}
	e.Op = Op(op)
	if !e.Op.Valid() {
		return e, fmt.Errorf("trace: invalid op %d", op)
	}
	fields := []func() error{
		func() error { v, err := binary.ReadUvarint(r.r); e.Size = int(v); return err },
		func() error { v, err := binary.ReadVarint(r.r); e.Peer = int(v); return err },
		func() error { v, err := binary.ReadUvarint(r.r); e.Tag = int(v); return err },
		func() error { v, err := binary.ReadUvarint(r.r); e.Comm = int(v); return err },
		func() error { v, err := binary.ReadVarint(r.r); e.GID = int32(v); return err },
	}
	for _, f := range fields {
		if err := f(); err != nil {
			return e, fmt.Errorf("trace: truncated record: %w", err)
		}
	}
	flag, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated record: %w", err)
	}
	e.Wildcard = flag&1 != 0
	rid, err := binary.ReadVarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated record: %w", err)
	}
	e.ReqID = int32(rid)
	readList := func() ([]int32, error) {
		n, err := binary.ReadUvarint(r.r)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated record: %w", err)
		}
		if n > 1<<24 {
			return nil, fmt.Errorf("trace: implausible request count %d", n)
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]int32, n)
		for i := range out {
			v, err := binary.ReadVarint(r.r)
			if err != nil {
				return nil, fmt.Errorf("trace: truncated record: %w", err)
			}
			out[i] = int32(v)
		}
		return out, nil
	}
	if e.Reqs, err = readList(); err != nil {
		return e, err
	}
	if e.ReqSrcs, err = readList(); err != nil {
		return e, err
	}
	d, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated record: %w", err)
	}
	e.DurationNS = math.Float64frombits(d)
	c, err := binary.ReadUvarint(r.r)
	if err != nil {
		return e, fmt.Errorf("trace: truncated record: %w", err)
	}
	e.ComputeNS = math.Float64frombits(c)
	return e, nil
}

// ReadAll decodes the whole stream.
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.ReadEvent()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
