package trace

// Sink is the per-rank interposition interface, the analog of the paper's
// customized PMPI library plus the two instrumented structure functions
// PMPI_COMM_Structure / PMPI_COMM_Structure_Exit (paper Figure 9).
//
// The MPL interpreter drives the structure methods as control structures are
// entered and left; the MPI runtime drives Event for every communication
// call. All methods are called from the owning rank's goroutine only.
//
// Protocol:
//   - Loops: LoopEnter once per activation, LoopIter before each iteration's
//     body, StructExit when the loop completes (possibly after 0 iterations).
//   - Branches: BranchEnter + StructExit around an executed arm; BranchSkip
//     when the condition selects no arm (if without else). The skip marker
//     keeps branch reach counters consistent for replay.
//   - Calls: CallEnter + StructExit around user-defined function bodies.
//   - Event once per MPI call, after it completes locally.
//   - Finalize at MPI_Finalize, before the rank exits.
type Sink interface {
	LoopEnter(site int32)
	LoopIter(site int32)
	BranchEnter(site int32, arm int8)
	BranchSkip(site int32)
	CallEnter(site int32)
	StructExit()
	// CommSite announces the static call site of the next Event. The
	// instrumented binary knows each MPI invocation's call site statically;
	// this marker carries it to the compressor so the event can be filled
	// into the right CST leaf.
	CommSite(site int32)
	Event(e *Event)
	Finalize()
}

// NopSink discards everything; used to measure uninstrumented baseline cost.
type NopSink struct{}

func (NopSink) LoopEnter(int32)         {}
func (NopSink) LoopIter(int32)          {}
func (NopSink) BranchEnter(int32, int8) {}
func (NopSink) BranchSkip(int32)        {}
func (NopSink) CallEnter(int32)         {}
func (NopSink) StructExit()             {}
func (NopSink) CommSite(int32)          {}
func (NopSink) Event(*Event)            {}
func (NopSink) Finalize()               {}

// CollectorSink appends raw events to a slice, ignoring structure markers.
// It is the "no compression" tracer used by tests and the Gzip baseline.
type CollectorSink struct {
	Events []Event
}

func (c *CollectorSink) LoopEnter(int32)         {}
func (c *CollectorSink) LoopIter(int32)          {}
func (c *CollectorSink) BranchEnter(int32, int8) {}
func (c *CollectorSink) BranchSkip(int32)        {}
func (c *CollectorSink) CallEnter(int32)         {}
func (c *CollectorSink) StructExit()             {}
func (c *CollectorSink) CommSite(int32)          {}
func (c *CollectorSink) Event(e *Event)          { c.Events = append(c.Events, *e) }
func (c *CollectorSink) Finalize()               {}
