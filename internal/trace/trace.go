// Package trace defines the communication event model shared by the MPI
// runtime, all compressors, the replay engine, and the LogGP simulator.
//
// An Event is what the PMPI interposition layer observes for one MPI call:
// operation, message size, peer, tag, communicator, the CST vertex GID of the
// call site (CYPRESS only), request linkage for non-blocking operations, and
// the elapsed time of the call.
package trace

import "fmt"

// Op enumerates the MPI operations the runtime supports.
type Op uint8

const (
	OpNone Op = iota
	OpSend
	OpRecv
	OpIsend
	OpIrecv
	OpWait
	OpWaitall
	OpWaitsome
	OpTestsome
	OpTestany
	OpBarrier
	OpBcast
	OpReduce
	OpAllreduce
	OpGather
	OpScatter
	OpAllgather
	OpAlltoall
	OpInit
	OpFinalize
	numOps
)

var opNames = [...]string{
	OpNone:      "None",
	OpSend:      "Send",
	OpRecv:      "Recv",
	OpIsend:     "Isend",
	OpIrecv:     "Irecv",
	OpWait:      "Wait",
	OpWaitall:   "Waitall",
	OpWaitsome:  "Waitsome",
	OpTestsome:  "Testsome",
	OpTestany:   "Testany",
	OpBarrier:   "Barrier",
	OpBcast:     "Bcast",
	OpReduce:    "Reduce",
	OpAllreduce: "Allreduce",
	OpGather:    "Gather",
	OpScatter:   "Scatter",
	OpAllgather: "Allgather",
	OpAlltoall:  "Alltoall",
	OpInit:      "Init",
	OpFinalize:  "Finalize",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return "MPI_" + opNames[o]
	}
	return fmt.Sprintf("MPI_Op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > OpNone && o < numOps }

// IsPointToPoint reports whether the operation names a single peer.
func (o Op) IsPointToPoint() bool {
	switch o {
	case OpSend, OpRecv, OpIsend, OpIrecv:
		return true
	}
	return false
}

// IsNonBlocking reports whether the operation returns a request handle.
func (o Op) IsNonBlocking() bool { return o == OpIsend || o == OpIrecv }

// IsCompletion reports whether the operation completes request handles.
func (o Op) IsCompletion() bool {
	switch o {
	case OpWait, OpWaitall, OpWaitsome, OpTestsome, OpTestany:
		return true
	}
	return false
}

// IsCollective reports whether the operation involves the whole communicator.
func (o Op) IsCollective() bool {
	switch o {
	case OpBarrier, OpBcast, OpReduce, OpAllreduce, OpGather, OpScatter,
		OpAllgather, OpAlltoall:
		return true
	}
	return false
}

// IsSendLike reports whether the op moves payload away from this rank
// (used when building communication-volume matrices).
func (o Op) IsSendLike() bool { return o == OpSend || o == OpIsend }

// OpByName maps an MPL communication intrinsic name to its operation.
// It returns OpNone for unknown names.
func OpByName(name string) Op {
	switch name {
	case "send":
		return OpSend
	case "recv":
		return OpRecv
	case "isend":
		return OpIsend
	case "irecv":
		return OpIrecv
	case "wait":
		return OpWait
	case "waitall":
		return OpWaitall
	case "waitsome":
		return OpWaitsome
	case "testany":
		return OpTestany
	case "barrier":
		return OpBarrier
	case "bcast":
		return OpBcast
	case "reduce":
		return OpReduce
	case "allreduce":
		return OpAllreduce
	case "gather":
		return OpGather
	case "scatter":
		return OpScatter
	case "allgather":
		return OpAllgather
	case "alltoall":
		return OpAlltoall
	}
	return OpNone
}

// AnySource is the wildcard source value for receives (MPI_ANY_SOURCE).
const AnySource = -1

// NoPeer marks events without a peer (collectives use Root instead).
const NoPeer = -2

// Event is a single observed MPI call on one rank.
type Event struct {
	Op   Op
	Size int   // payload bytes (message size, or per-rank size for collectives)
	Peer int   // source/dest rank for p2p, root rank for rooted collectives, NoPeer otherwise
	Tag  int   // message tag, 0 for collectives
	Comm int   // communicator id (0 = world)
	GID  int32 // CST vertex id of the call site; -1 when uninstrumented

	// Wildcard is set on receives posted with AnySource; Peer then holds the
	// actual matched source (resolved at completion for non-blocking ops).
	Wildcard bool

	// ReqID is the rank-local sequence number of the request returned by a
	// non-blocking operation, -1 otherwise. Request numbers are excluded from
	// SameParams: they grow monotonically, and the compressors re-encode
	// them (CYPRESS maps them to poster GIDs, per the paper; the baselines
	// use relative offsets).
	ReqID int32

	// Reqs holds, for completion operations, identifiers of the requests
	// that completed here, in completion order. In raw traces these are
	// ReqID values; the CYPRESS compressor rewrites them to poster GIDs.
	Reqs []int32

	// ReqSrcs holds, parallel to Reqs, the matched source rank of each
	// completed receive (resolving wildcards); -1 entries mark completed
	// sends, which need no resolution. nil when no completion carried a
	// receive.
	ReqSrcs []int32

	// DurationNS is the elapsed time of the call in nanoseconds.
	DurationNS float64

	// ComputeNS is the compute time elapsed on this rank since the previous
	// MPI call; the replay simulator uses it to advance the local clock.
	ComputeNS float64
}

// SameParams reports whether two events are mergeable from the compressor's
// point of view: identical in everything except time. This is the equality
// CYPRESS uses when comparing an incoming operation with the last record of
// the same CTT vertex (paper: "all but the communication time").
func (e *Event) SameParams(o *Event) bool {
	if e.Op != o.Op || e.Size != o.Size || e.Peer != o.Peer ||
		e.Tag != o.Tag || e.Comm != o.Comm || e.Wildcard != o.Wildcard ||
		len(e.Reqs) != len(o.Reqs) || len(e.ReqSrcs) != len(o.ReqSrcs) {
		return false
	}
	for i := range e.Reqs {
		if e.Reqs[i] != o.Reqs[i] {
			return false
		}
	}
	for i := range e.ReqSrcs {
		if e.ReqSrcs[i] != o.ReqSrcs[i] {
			return false
		}
	}
	return true
}

// SameParamsExceptPeer is SameParams with the peer excluded, used by the
// CYPRESS leaf compressor to detect records that differ only in their
// communication partner (peer-pattern folding).
func (e *Event) SameParamsExceptPeer(o *Event) bool {
	saved := e.Peer
	defer func() { e.Peer = saved }()
	e.Peer = o.Peer
	return e.SameParams(o)
}

func (e Event) String() string {
	s := e.Op.String()
	switch {
	case e.Op.IsPointToPoint():
		s += fmt.Sprintf("(peer=%d size=%d tag=%d)", e.Peer, e.Size, e.Tag)
	case e.Op.IsCollective() && e.Peer != NoPeer:
		s += fmt.Sprintf("(root=%d size=%d)", e.Peer, e.Size)
	case e.Op.IsCompletion():
		s += fmt.Sprintf("(reqs=%v)", e.Reqs)
	}
	return s
}
