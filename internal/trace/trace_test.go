package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                       Op
		p2p, nonblk, compl, coll bool
	}{
		{OpSend, true, false, false, false},
		{OpRecv, true, false, false, false},
		{OpIsend, true, true, false, false},
		{OpIrecv, true, true, false, false},
		{OpWait, false, false, true, false},
		{OpWaitall, false, false, true, false},
		{OpWaitsome, false, false, true, false},
		{OpTestsome, false, false, true, false},
		{OpTestany, false, false, true, false},
		{OpBarrier, false, false, false, true},
		{OpBcast, false, false, false, true},
		{OpReduce, false, false, false, true},
		{OpAllreduce, false, false, false, true},
		{OpAlltoall, false, false, false, true},
		{OpInit, false, false, false, false},
		{OpFinalize, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsPointToPoint() != c.p2p || c.op.IsNonBlocking() != c.nonblk ||
			c.op.IsCompletion() != c.compl || c.op.IsCollective() != c.coll {
			t.Errorf("%v classification wrong", c.op)
		}
		if !c.op.Valid() {
			t.Errorf("%v should be valid", c.op)
		}
	}
	if OpNone.Valid() || Op(200).Valid() {
		t.Error("invalid ops reported valid")
	}
}

func TestOpString(t *testing.T) {
	if OpIsend.String() != "MPI_Isend" {
		t.Fatalf("got %q", OpIsend.String())
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatalf("unknown op string: %q", Op(99).String())
	}
}

func TestSameParams(t *testing.T) {
	a := Event{Op: OpSend, Size: 1024, Peer: 3, Tag: 7, Comm: 0}
	b := a
	if !a.SameParams(&b) {
		t.Fatal("identical events must match")
	}
	b.DurationNS = 999 // time is excluded from comparison
	if !a.SameParams(&b) {
		t.Fatal("time must not affect SameParams")
	}
	for _, mut := range []func(*Event){
		func(e *Event) { e.Op = OpRecv },
		func(e *Event) { e.Size++ },
		func(e *Event) { e.Peer++ },
		func(e *Event) { e.Tag++ },
		func(e *Event) { e.Comm++ },
		func(e *Event) { e.Wildcard = true },
		func(e *Event) { e.Reqs = []int32{1} },
		func(e *Event) { e.ReqSrcs = []int32{2} },
	} {
		c := a
		c.Reqs = append([]int32(nil), a.Reqs...)
		mut(&c)
		if a.SameParams(&c) {
			t.Fatalf("mutation should break SameParams: %+v vs %+v", a, c)
		}
	}
	// Req lists compared element-wise.
	w1 := Event{Op: OpWaitall, Reqs: []int32{4, 5, 4}}
	w2 := Event{Op: OpWaitall, Reqs: []int32{4, 5, 4}}
	w3 := Event{Op: OpWaitall, Reqs: []int32{4, 4, 5}}
	if !w1.SameParams(&w2) || w1.SameParams(&w3) {
		t.Fatal("req list comparison wrong")
	}
	// ReqID is excluded: it is a monotonically growing handle number.
	r1 := Event{Op: OpIsend, ReqID: 0}
	r2 := Event{Op: OpIsend, ReqID: 17}
	if !r1.SameParams(&r2) {
		t.Fatal("ReqID must not affect SameParams")
	}
}

func randEvent(rng *rand.Rand) Event {
	ops := []Op{OpSend, OpRecv, OpIsend, OpIrecv, OpWait, OpWaitall, OpBcast,
		OpReduce, OpAllreduce, OpBarrier, OpAlltoall, OpInit, OpFinalize}
	e := Event{
		Op:         ops[rng.Intn(len(ops))],
		Size:       rng.Intn(1 << 20),
		Peer:       rng.Intn(512) - 2, // exercises negative sentinels
		Tag:        rng.Intn(100),
		Comm:       rng.Intn(3),
		GID:        int32(rng.Intn(1000)) - 1,
		Wildcard:   rng.Intn(4) == 0,
		DurationNS: rng.Float64() * 1e7,
		ComputeNS:  rng.Float64() * 1e7,
	}
	if e.Op.IsNonBlocking() {
		e.ReqID = int32(rng.Intn(1000))
	} else {
		e.ReqID = -1
	}
	if e.Op.IsCompletion() {
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			e.Reqs = append(e.Reqs, int32(rng.Intn(100)))
		}
		if n > 0 && rng.Intn(2) == 0 {
			for i := 0; i < n; i++ {
				e.ReqSrcs = append(e.ReqSrcs, int32(rng.Intn(64))-1)
			}
		}
	}
	return e
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	events := make([]Event, 2000)
	for i := range events {
		events[i] = randEvent(rng)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range events {
		w.WriteEvent(&events[i])
	}
	n, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(normalize(events[i]), normalize(got[i])) {
			t.Fatalf("event %d mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

// normalize maps nil and empty request slices to the same representation.
func normalize(e Event) Event {
	if len(e.Reqs) == 0 {
		e.Reqs = nil
	}
	if len(e.ReqSrcs) == 0 {
		e.ReqSrcs = nil
	}
	return e
}

func TestCodecEmptyStream(t *testing.T) {
	got, err := NewReader(bytes.NewReader(nil)).ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v %v", got, err)
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := Event{Op: OpSend, Size: 1 << 19, Peer: 44, Tag: 3}
	w.WriteEvent(&e)
	w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.ReadEvent(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		} else if err == io.EOF && cut > 1 {
			// First byte consumed means mid-record truncation must not be
			// reported as clean EOF.
			t.Fatalf("mid-record truncation at %d reported as EOF", cut)
		}
	}
}

func TestCodecRejectsInvalidOp(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xC8, 0x01})) // varint 200
	if _, err := r.ReadEvent(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestQuickCodec(t *testing.T) {
	f := func(size uint16, peer int16, tag uint8, dur float64) bool {
		e := Event{Op: OpIsend, Size: int(size), Peer: int(peer), Tag: int(tag), DurationNS: dur}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.WriteEvent(&e)
		w.Flush()
		got, err := NewReader(&buf).ReadEvent()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(e), normalize(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteEvent(b *testing.B) {
	w := NewWriter(io.Discard)
	e := Event{Op: OpSend, Size: 4096, Peer: 17, Tag: 2, DurationNS: 1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.WriteEvent(&e)
	}
	w.Flush()
}
