// Command benchdiff compares two benchmark JSON documents and reports
// per-benchmark ns/op and allocs/op deltas. Either side may be a fresh
// `cypressbench -benchjson` report or a checked-in BENCH_pr*.json trajectory
// file (the nested "after" measurements are used).
//
// Usage:
//
//	go run scripts/benchdiff.go [-threshold 0.25] [-allocslack 0] [-report-only] baseline.json current.json
//
// Exit status is 1 when any benchmark regresses beyond the thresholds,
// unless -report-only is set (CI uses report-only while single-run container
// timings stay too noisy to gate on).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "ns/op regression threshold as a fraction (0.25 = +25%)")
	allocSlack := flag.Int64("allocslack", 0, "allowed allocs/op growth before flagging")
	reportOnly := flag.Bool("report-only", false, "always exit 0; print the report and regression count only")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json current.json")
		os.Exit(2)
	}
	base, err := bench.ParseBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := bench.ParseBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressed, err := bench.Diff(base, cur).WriteText(os.Stdout, *threshold, *allocSlack)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if regressed > 0 && !*reportOnly {
		os.Exit(1)
	}
}
